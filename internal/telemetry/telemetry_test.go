package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantiles pins the fixed-bucket quantile math on a known
// distribution: counts land in the right buckets and the interpolated
// quantiles stay inside the bucket that holds their rank.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 90 fast observations and 10 slow ones: p50 must resolve inside the
	// fast bucket, p99 inside the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(150 * time.Microsecond) // bucket (100µs, 250µs]
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond) // bucket (50ms, 100ms]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	snap := h.Snapshot(true)
	if snap.Count != 100 {
		t.Fatalf("snapshot count = %d, want 100", snap.Count)
	}
	if snap.P50Millis <= 0.1 || snap.P50Millis > 0.25 {
		t.Errorf("p50 = %gms, want in (0.1, 0.25]", snap.P50Millis)
	}
	if snap.P99Millis <= 50 || snap.P99Millis > 100 {
		t.Errorf("p99 = %gms, want in (50, 100]", snap.P99Millis)
	}
	var total int64
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != 100 {
		t.Errorf("bucket counts sum to %d, want 100", total)
	}
	// Without buckets the quantiles still come back, the layout does not.
	lean := h.Snapshot(false)
	if lean.Buckets != nil {
		t.Errorf("Snapshot(false) carried %d buckets", len(lean.Buckets))
	}
	if lean.P99Millis != snap.P99Millis {
		t.Errorf("quantiles drifted between snapshots: %g vs %g", lean.P99Millis, snap.P99Millis)
	}
}

// TestHistogramOverflow pins the overflow bucket: observations beyond
// the last bound are counted, never dropped.
func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Minute) // beyond the 60s top bound
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	snap := h.Snapshot(true)
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.Count != 1 {
		t.Fatalf("overflow bucket count = %d, want 1: %+v", last.Count, snap.Buckets)
	}
}

// TestRegistryConcurrent is the race sweep the package contract
// promises: many writers observing requests while snapshotters read,
// under -race, ending with every route's request counter equal to its
// histogram count.
func TestRegistryConcurrent(t *testing.T) {
	reg := New()
	routes := []string{"GET /a", "POST /b", "GET /c"}
	const writers = 8
	const perWriter = 500

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Weakly consistent mid-flight reads must never fault or go
				// negative.
				for _, rs := range reg.Snapshot(true) {
					if rs.Requests < 0 || rs.Latency.Count < 0 {
						t.Error("negative counter in mid-flight snapshot")
						return
					}
				}
				_ = reg.Totals()
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				m := reg.Route(routes[(w+i)%len(routes)])
				m.begin()
				m.done(200, 64, time.Millisecond)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	tot := reg.Totals()
	if want := int64(writers * perWriter); tot.Requests != want {
		t.Fatalf("total requests = %d, want %d", tot.Requests, want)
	}
	if tot.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiescence", tot.InFlight)
	}
	for _, rs := range reg.Snapshot(true) {
		if rs.Requests != rs.Latency.Count {
			t.Errorf("route %s: requests %d != histogram count %d", rs.Route, rs.Requests, rs.Latency.Count)
		}
	}
}

// TestMiddleware drives the full middleware contract: per-route
// accounting, 429 rejection counting, the 499 convention for handlers
// that write nothing, and one parseable log line per request carrying
// the handler's annotation.
func TestMiddleware(t *testing.T) {
	reg := New()
	var buf bytes.Buffer
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		Annotate(r.Context(), "job-key-1")
		w.Write([]byte("hello"))
	})
	mux.HandleFunc("/reject", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	mux.HandleFunc("/silent", func(w http.ResponseWriter, r *http.Request) {})
	label := func(r *http.Request) string { return "GET " + r.URL.Path }
	srv := httptest.NewServer(Middleware(reg, label, NewLogger(&buf), mux))
	defer srv.Close()

	for _, path := range []string{"/ok", "/ok", "/reject", "/silent"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	ok := reg.Route("GET /ok").Snapshot(true)
	if ok.Requests != 2 || ok.Latency.Count != 2 || ok.Status["2xx"] != 2 {
		t.Fatalf("GET /ok snapshot = %+v", ok)
	}
	if ok.Bytes != 10 { // two "hello" bodies
		t.Errorf("GET /ok bytes = %d, want 10", ok.Bytes)
	}
	rej := reg.Route("GET /reject").Snapshot(false)
	if rej.Rejected != 1 || rej.Status["4xx"] != 1 {
		t.Fatalf("GET /reject snapshot = %+v", rej)
	}
	// A handler that never writes is recorded under the 499 convention:
	// no status class, but still a completed request with latency.
	sil := reg.Route("GET /silent").Snapshot(false)
	if sil.Requests != 1 || sil.Latency.Count != 1 {
		t.Fatalf("GET /silent snapshot = %+v", sil)
	}
	if tot := reg.Totals(); tot.Requests != 4 || tot.Rejected != 1 {
		t.Fatalf("totals = %+v", tot)
	}

	var lines []LogEntry
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e LogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable log line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 4 {
		t.Fatalf("logged %d lines, want 4", len(lines))
	}
	annotated := 0
	for _, e := range lines {
		if e.Method != "GET" || !strings.HasPrefix(e.Route, "GET /") || e.Time == "" {
			t.Errorf("incomplete log entry %+v", e)
		}
		if e.Key == "job-key-1" {
			annotated++
		}
		if e.Path == "/silent" && e.Status != 499 {
			t.Errorf("silent handler logged status %d, want 499", e.Status)
		}
	}
	if annotated != 2 {
		t.Errorf("annotated lines = %d, want 2 (one per /ok request)", annotated)
	}
}

// TestAnnotateOutsideMiddleware pins that Annotate is a safe no-op when
// no middleware installed a slot (handlers under direct test).
func TestAnnotateOutsideMiddleware(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/x", nil)
	Annotate(r.Context(), "key") // must not panic
}

// TestNilLogger pins the nil-Logger contract: NewLogger(nil) is nil and
// logging through it is a no-op.
func TestNilLogger(t *testing.T) {
	l := NewLogger(nil)
	if l != nil {
		t.Fatalf("NewLogger(nil) = %v, want nil", l)
	}
	l.Log(LogEntry{Method: "GET"}) // must not panic
}

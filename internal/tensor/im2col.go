package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution in NCHW layout.
type ConvGeom struct {
	Batch    int // N
	InC      int // input channels
	InH, InW int // input spatial size
	OutC     int // output channels
	KH, KW   int // kernel size
	Stride   int
	Pad      int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// ColRows returns the im2col matrix row count: InC*KH*KW.
func (g ConvGeom) ColRows() int { return g.InC * g.KH * g.KW }

// ColCols returns the im2col matrix column count: N*OutH*OutW.
func (g ConvGeom) ColCols() int { return g.Batch * g.OutH() * g.OutW() }

// Validate reports an error if the geometry is degenerate.
func (g ConvGeom) Validate() error {
	if g.Batch <= 0 || g.InC <= 0 || g.OutC <= 0 {
		return fmt.Errorf("tensor: conv geometry with non-positive counts: %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got %d", g.Stride)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv output empty for %+v", g)
	}
	return nil
}

// Im2Col expands input (N, C, H, W) into a (C*KH*KW, N*OutH*OutW) matrix so
// convolution becomes a single matmul: W(OutC, C*KH*KW) × col. Padding
// contributes zeros. The expansion itself involves no reductions, so it is
// deterministic regardless of device mode.
func Im2Col(in *Tensor, g ConvGeom, dst *Tensor) {
	outH, outW := g.OutH(), g.OutW()
	cols := g.ColCols()
	id := in.Data()
	dd := dst.Data()
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				base := row * cols
				for n := 0; n < g.Batch; n++ {
					inBase := (n*g.InC + c) * g.InH * g.InW
					for oh := 0; oh < outH; oh++ {
						ih := oh*g.Stride + kh - g.Pad
						dstBase := base + (n*outH+oh)*outW
						if ih < 0 || ih >= g.InH {
							for ow := 0; ow < outW; ow++ {
								dd[dstBase+ow] = 0
							}
							continue
						}
						rowBase := inBase + ih*g.InW
						for ow := 0; ow < outW; ow++ {
							iw := ow*g.Stride + kw - g.Pad
							if iw < 0 || iw >= g.InW {
								dd[dstBase+ow] = 0
							} else {
								dd[dstBase+ow] = id[rowBase+iw]
							}
						}
					}
				}
			}
		}
	}
}

// Col2ImAccum scatters a (C*KH*KW, N*OutH*OutW) column matrix back into an
// image tensor (N, C, H, W), accumulating overlapping contributions in a
// fixed sequential order. The device layer decides whether to perturb the
// accumulation ordering (simulating atomicAdd) before calling this.
func Col2ImAccum(col *Tensor, g ConvGeom, dst *Tensor, rowOrder []int) {
	outH, outW := g.OutH(), g.OutW()
	cols := g.ColCols()
	cd := col.Data()
	dd := dst.Data()
	rows := g.ColRows()
	for ri := 0; ri < rows; ri++ {
		row := ri
		if rowOrder != nil {
			row = rowOrder[ri]
		}
		kw := row % g.KW
		kh := (row / g.KW) % g.KH
		c := row / (g.KW * g.KH)
		base := row * cols
		for n := 0; n < g.Batch; n++ {
			outBase := (n*g.InC + c) * g.InH * g.InW
			for oh := 0; oh < outH; oh++ {
				ih := oh*g.Stride + kh - g.Pad
				if ih < 0 || ih >= g.InH {
					continue
				}
				srcBase := base + (n*outH+oh)*outW
				dstRow := outBase + ih*g.InW
				for ow := 0; ow < outW; ow++ {
					iw := ow*g.Stride + kw - g.Pad
					if iw < 0 || iw >= g.InW {
						continue
					}
					dd[dstRow+iw] += cd[srcBase+ow]
				}
			}
		}
	}
}

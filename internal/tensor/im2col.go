package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution in NCHW layout.
type ConvGeom struct {
	Batch    int // N
	InC      int // input channels
	InH, InW int // input spatial size
	OutC     int // output channels
	KH, KW   int // kernel size
	Stride   int
	Pad      int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// ColRows returns the im2col matrix row count: InC*KH*KW.
func (g ConvGeom) ColRows() int { return g.InC * g.KH * g.KW }

// ColCols returns the im2col matrix column count: N*OutH*OutW.
func (g ConvGeom) ColCols() int { return g.Batch * g.OutH() * g.OutW() }

// Validate reports an error if the geometry is degenerate.
func (g ConvGeom) Validate() error {
	if g.Batch <= 0 || g.InC <= 0 || g.OutC <= 0 {
		return fmt.Errorf("tensor: conv geometry with non-positive counts: %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("tensor: conv stride must be positive, got %d", g.Stride)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv output empty for %+v", g)
	}
	return nil
}

// Im2Col expands input (N, C, H, W) into a (C*KH*KW, N*OutH*OutW) matrix so
// convolution becomes a single matmul: W(OutC, C*KH*KW) × col. Padding
// contributes zeros. The expansion itself involves no reductions, so it is
// deterministic regardless of device mode.
//
// The full expansion is now a single maximal panel of Im2ColPanel, the
// tile-granular form the device's packed-panel GEMM fuses with operand
// packing (DESIGN.md §14); conv layers no longer materialize this matrix
// on the hot path, but the whole-matrix form remains the reference the
// fused kernels are tested against.
func Im2Col(in *Tensor, g ConvGeom, dst *Tensor) {
	Im2ColPanel(in, g, 0, g.ColRows(), 0, g.ColCols(), dst.Data())
}

// Im2ColPanel writes the [rLo,rHi) × [jLo,jHi) sub-block of the im2col
// matrix into dst, row-major with row stride jHi-jLo. Rows index kernel
// positions (c, kh, kw); columns index output positions (n, oh, ow). The
// values are exactly the ones Im2Col would place at the same coordinates —
// pure copies of input elements (or padding zeros), so a GEMM that packs
// its B-operand panels through this function consumes bit-identical
// multiplicands without the full column matrix ever existing.
func Im2ColPanel(in *Tensor, g ConvGeom, rLo, rHi, jLo, jHi int, dst []float32) {
	outH, outW := g.OutH(), g.OutW()
	w := jHi - jLo
	id := in.Data()
	// Kernel-position counters for row r, advanced incrementally to keep
	// div/mod out of the per-row loop.
	kw := rLo % g.KW
	kh := (rLo / g.KW) % g.KH
	c := rLo / (g.KW * g.KH)
	for r := rLo; r < rHi; r++ {
		drow := dst[(r-rLo)*w : (r-rLo)*w+w]
		// Walk the column range as runs of contiguous ow within one (n, oh).
		j := jLo
		for j < jHi {
			n := j / (outH * outW)
			rem := j - n*outH*outW
			oh := rem / outW
			ow := rem - oh*outW
			run := outW - ow
			if j+run > jHi {
				run = jHi - j
			}
			seg := drow[j-jLo : j-jLo+run]
			ih := oh*g.Stride + kh - g.Pad
			if ih < 0 || ih >= g.InH {
				for i := range seg {
					seg[i] = 0
				}
			} else {
				rowBase := (n*g.InC+c)*g.InH*g.InW + ih*g.InW
				for i := range seg {
					iw := (ow+i)*g.Stride + kw - g.Pad
					if iw < 0 || iw >= g.InW {
						seg[i] = 0
					} else {
						seg[i] = id[rowBase+iw]
					}
				}
			}
			j += run
		}
		if kw++; kw == g.KW {
			kw = 0
			if kh++; kh == g.KH {
				kh = 0
				c++
			}
		}
	}
}

// Im2ColPanelT writes the [jLo,jHi) × [rLo,rHi) sub-block of the
// TRANSPOSED im2col matrix into dst, row-major with row stride rHi-rLo:
// rows index output positions j, columns index kernel positions r. This is
// the panel shape the backward-weights GEMM (dW = dy × colᵀ) packs, again
// without materializing either col or its transpose.
func Im2ColPanelT(in *Tensor, g ConvGeom, jLo, jHi, rLo, rHi int, dst []float32) {
	outH, outW := g.OutH(), g.OutW()
	w := rHi - rLo
	id := in.Data()
	// Output-position counters for column j, advanced incrementally.
	n := jLo / (outH * outW)
	rem := jLo - n*outH*outW
	oh := rem / outW
	ow := rem - oh*outW
	kw0 := rLo % g.KW
	kh0 := (rLo / g.KW) % g.KH
	c0 := rLo / (g.KW * g.KH)
	for j := jLo; j < jHi; j++ {
		drow := dst[(j-jLo)*w : (j-jLo)*w+w]
		inBase := n * g.InC * g.InH * g.InW
		ihBase := oh*g.Stride - g.Pad
		iwBase := ow*g.Stride - g.Pad
		kw, kh, c := kw0, kh0, c0
		for i := range drow {
			ih := ihBase + kh
			iw := iwBase + kw
			if ih < 0 || ih >= g.InH || iw < 0 || iw >= g.InW {
				drow[i] = 0
			} else {
				drow[i] = id[inBase+(c*g.InH+ih)*g.InW+iw]
			}
			if kw++; kw == g.KW {
				kw = 0
				if kh++; kh == g.KH {
					kh = 0
					c++
				}
			}
		}
		if ow++; ow == outW {
			ow = 0
			if oh++; oh == outH {
				oh = 0
				n++
			}
		}
	}
}

// Col2ImAccum scatters a (C*KH*KW, N*OutH*OutW) column matrix back into an
// image tensor (N, C, H, W), accumulating overlapping contributions in a
// fixed sequential order. The device layer decides whether to perturb the
// accumulation ordering (simulating atomicAdd) before calling this.
func Col2ImAccum(col *Tensor, g ConvGeom, dst *Tensor, rowOrder []int) {
	outH, outW := g.OutH(), g.OutW()
	cols := g.ColCols()
	cd := col.Data()
	dd := dst.Data()
	rows := g.ColRows()
	for ri := 0; ri < rows; ri++ {
		row := ri
		if rowOrder != nil {
			row = rowOrder[ri]
		}
		kw := row % g.KW
		kh := (row / g.KW) % g.KH
		c := row / (g.KW * g.KH)
		base := row * cols
		for n := 0; n < g.Batch; n++ {
			outBase := (n*g.InC + c) * g.InH * g.InW
			for oh := 0; oh < outH; oh++ {
				ih := oh*g.Stride + kh - g.Pad
				if ih < 0 || ih >= g.InH {
					continue
				}
				srcBase := base + (n*outH+oh)*outW
				dstRow := outBase + ih*g.InW
				for ow := 0; ow < outW; ow++ {
					iw := ow*g.Stride + kw - g.Pad
					if iw < 0 || iw >= g.InW {
						continue
					}
					dd[dstRow+iw] += cd[srcBase+ow]
				}
			}
		}
	}
}

package tensor

import (
	"testing"

	"repro/internal/rng"
)

func panelGeoms() []ConvGeom {
	return []ConvGeom{
		{Batch: 2, InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Batch: 1, InC: 2, InH: 5, InW: 7, OutC: 2, KH: 3, KW: 3, Stride: 2, Pad: 0},
		{Batch: 3, InC: 1, InH: 9, InW: 6, OutC: 2, KH: 2, KW: 3, Stride: 2, Pad: 1},
		{Batch: 1, InC: 2, InH: 4, InW: 4, OutC: 2, KH: 1, KW: 1, Stride: 1, Pad: 0},
	}
}

func randImage(g ConvGeom, seed uint64) *Tensor {
	x := New(g.Batch, g.InC, g.InH, g.InW)
	s := rng.New(seed)
	d := x.Data()
	for i := range d {
		d[i] = float32(s.Norm())
	}
	return x
}

// TestIm2ColPanelMatchesFull slices random sub-rectangles out of the full
// im2col matrix and checks Im2ColPanel reproduces them exactly — the
// property the fused GEMM pack path relies on.
func TestIm2ColPanelMatchesFull(t *testing.T) {
	for gi, g := range panelGeoms() {
		x := randImage(g, uint64(gi+1))
		rows, cols := g.ColRows(), g.ColCols()
		full := New(rows, cols)
		Im2Col(x, g, full)
		fd := full.Data()

		s := rng.New(uint64(50 + gi))
		for trial := 0; trial < 40; trial++ {
			rLo := s.Intn(rows)
			rHi := rLo + 1 + s.Intn(rows-rLo)
			jLo := s.Intn(cols)
			jHi := jLo + 1 + s.Intn(cols-jLo)
			w := jHi - jLo
			dst := make([]float32, (rHi-rLo)*w)
			for i := range dst {
				dst[i] = -12345 // poison: every element must be overwritten
			}
			Im2ColPanel(x, g, rLo, rHi, jLo, jHi, dst)
			for r := rLo; r < rHi; r++ {
				for j := jLo; j < jHi; j++ {
					if got, want := dst[(r-rLo)*w+(j-jLo)], fd[r*cols+j]; got != want {
						t.Fatalf("geom %d panel r=[%d,%d) j=[%d,%d): [%d][%d] = %v, want %v",
							gi, rLo, rHi, jLo, jHi, r, j, got, want)
					}
				}
			}
		}
	}
}

// TestIm2ColPanelTMatchesFull does the same for the transposed panels the
// backward-weights GEMM packs.
func TestIm2ColPanelTMatchesFull(t *testing.T) {
	for gi, g := range panelGeoms() {
		x := randImage(g, uint64(gi+1))
		rows, cols := g.ColRows(), g.ColCols()
		full := New(rows, cols)
		Im2Col(x, g, full)
		fd := full.Data()

		s := rng.New(uint64(90 + gi))
		for trial := 0; trial < 40; trial++ {
			jLo := s.Intn(cols)
			jHi := jLo + 1 + s.Intn(cols-jLo)
			rLo := s.Intn(rows)
			rHi := rLo + 1 + s.Intn(rows-rLo)
			w := rHi - rLo
			dst := make([]float32, (jHi-jLo)*w)
			for i := range dst {
				dst[i] = -12345
			}
			Im2ColPanelT(x, g, jLo, jHi, rLo, rHi, dst)
			for j := jLo; j < jHi; j++ {
				for r := rLo; r < rHi; r++ {
					if got, want := dst[(j-jLo)*w+(r-rLo)], fd[r*cols+j]; got != want {
						t.Fatalf("geom %d panelT j=[%d,%d) r=[%d,%d): [%d][%d] = %v, want %v",
							gi, jLo, jHi, rLo, rHi, j, r, got, want)
					}
				}
			}
		}
	}
}

// TestScratchPool exercises the bucketed pool: a Get after Put of the same
// size class reuses the buffer, lengths are exact, and foreign buffers are
// rejected rather than filed.
func TestScratchPool(t *testing.T) {
	s := GetScratch(1000)
	if len(s) != 1000 || cap(s) != 1024 {
		t.Fatalf("GetScratch(1000): len=%d cap=%d, want 1000/1024", len(s), cap(s))
	}
	PutScratch(s)
	s2 := GetScratch(600) // same bucket (513..1024)
	if cap(s2) != 1024 {
		t.Fatalf("pooled buffer not reused: cap=%d", cap(s2))
	}
	if GetScratch(0) != nil {
		t.Fatal("GetScratch(0) should be nil")
	}
	PutScratch(make([]float32, 3)) // non-power-of-two cap: dropped, no panic
}

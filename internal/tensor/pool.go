package tensor

import (
	"math/bits"
	"sync"
)

// Scratch pool: size-bucketed float32 buffers shared by every training step
// in the process. The GEMM pack panels, the conv backward column matrices,
// the batch-norm channel-major temporaries and the data loader's batch
// assembly buffers all live exactly as long as one kernel, one layer call
// or one batch; routing them through a shared pool means a population of
// replicas recycles a handful of buffers instead of each layer holding (or
// worse, reallocating) its own copy of the largest tensors in the network.
//
// Buffers are bucketed by ceil(log2(size)) so a Get never returns less
// than asked for and never wastes more than 2× the request. Contents are
// unspecified; callers must fully overwrite (or explicitly zero) what they
// use. Returning a buffer to the wrong bucket is impossible — PutScratch
// re-derives the bucket from the buffer's capacity.
//
// Each bucket is a mutex-guarded stack rather than a sync.Pool: Put into a
// sync.Pool boxes the slice header into an interface, which costs one heap
// allocation per round-trip and would defeat the zero-alloc steady-state
// gate (see DESIGN.md §15). The stacks are capped at bucketCap buffers per
// bucket; overflow is simply dropped for the GC to reclaim, which bounds
// worst-case retention at sum(bucketCap · 2^i) over the buckets actually
// touched by the process.

// scratchBuckets covers sizes up to 2^31 floats; index i holds buffers
// with capacity exactly 2^i.
var scratchBuckets [32]scratchBucket

// bucketCap bounds how many idle buffers one bucket retains. Steady-state
// training needs only a few buffers per size class (pack panels, loader
// double-buffers, per-layer temporaries), but a population of replicas
// training concurrently multiplies that, so the cap is sized generously.
const bucketCap = 64

type scratchBucket struct {
	mu   sync.Mutex
	free [][]float32
}

// bucketFor returns the bucket index whose buffers hold at least n floats.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetScratch returns a float32 buffer of length n from the shared pool,
// allocating a fresh power-of-two-capacity buffer on a pool miss. Contents
// are unspecified.
func GetScratch(n int) []float32 {
	if n <= 0 {
		return nil
	}
	idx := bucketFor(n)
	b := &scratchBuckets[idx]
	b.mu.Lock()
	if last := len(b.free) - 1; last >= 0 {
		s := b.free[last]
		b.free[last] = nil
		b.free = b.free[:last]
		b.mu.Unlock()
		return s[:n]
	}
	b.mu.Unlock()
	return make([]float32, n, 1<<idx)
}

// PutScratch returns a buffer obtained from GetScratch to the pool. Buffers
// whose capacity is not an exact power of two (i.e. not pool-born) are
// dropped rather than filed in a bucket they would under-serve; so are
// buffers arriving at a bucket already holding bucketCap idle entries.
func PutScratch(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := &scratchBuckets[bucketFor(c)]
	b.mu.Lock()
	if len(b.free) < bucketCap {
		b.free = append(b.free, s[:c])
	}
	b.mu.Unlock()
}

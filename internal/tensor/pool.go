package tensor

import (
	"math/bits"
	"sync"
)

// Scratch pool: size-bucketed, sync.Pool-backed float32 buffers shared by
// every training step in the process. The GEMM pack panels, the conv
// backward column matrices and the batch-norm channel-major temporaries all
// live exactly as long as one kernel or one layer call; routing them
// through a shared pool means a population of replicas recycles a handful
// of buffers instead of each layer holding (or worse, reallocating) its
// own copy of the largest tensors in the network. sync.Pool keeps the
// buffers GC-visible, so memory pressure can always reclaim them.
//
// Buffers are bucketed by ceil(log2(size)) so a Get never returns less
// than asked for and never wastes more than 2× the request. Contents are
// unspecified; callers must fully overwrite (or explicitly zero) what they
// use. Returning a buffer to the wrong bucket is impossible — PutScratch
// re-derives the bucket from the buffer's capacity.

// scratchBuckets covers sizes up to 2^31 floats; index i holds buffers
// with capacity exactly 2^i.
var scratchBuckets [32]sync.Pool

// bucketFor returns the bucket index whose buffers hold at least n floats.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetScratch returns a float32 buffer of length n from the shared pool,
// allocating a fresh power-of-two-capacity buffer on a pool miss. Contents
// are unspecified.
func GetScratch(n int) []float32 {
	if n <= 0 {
		return nil
	}
	idx := bucketFor(n)
	if v := scratchBuckets[idx].Get(); v != nil {
		return (*v.(*[]float32))[:n]
	}
	return make([]float32, n, 1<<idx)
}

// PutScratch returns a buffer obtained from GetScratch to the pool. Buffers
// whose capacity is not an exact power of two (i.e. not pool-born) are
// dropped rather than filed in a bucket they would under-serve.
func PutScratch(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	s = s[:c]
	scratchBuckets[bucketFor(c)].Put(&s)
}

// Package tensor implements the dense float32 tensors used throughout the
// training stack. Tensors are row-major, contiguous, and deliberately
// simple: the accelerator simulation in internal/device owns every
// reduction whose floating-point ordering matters, so this package only
// provides shape bookkeeping, element access and order-insensitive
// elementwise operations.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. A zero-dimensional
// tensor (no dims) holds a single scalar.
//
// The panic messages below format a copy of the shape rather than the
// parameter itself: handing the variadic slice to fmt would make it escape,
// heap-allocating the []int at every call site even on the happy path. The
// copy keeps shape non-escaping, so callers like device.Alloc build their
// shape argument on the stack (the zero-alloc steady state depends on it).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, append([]int(nil), shape...)))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", append([]int(nil), shape...), n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// FromSliceInto rebinds hdr to wrap data (not copied) with the given shape
// and returns hdr. It is the header-reuse form of FromSlice: a layer that
// wraps a scratch buffer every step keeps one Tensor header alive and
// rebinds it instead of allocating a fresh header (struct + shape slice)
// per call. hdr must not be nil and must not be aliased by live views.
func FromSliceInto(hdr *Tensor, data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", append([]int(nil), shape...), n, len(data)))
	}
	hdr.shape = append(hdr.shape[:0], shape...)
	hdr.data = data
	return hdr
}

// Shape returns the tensor's dimensions. The caller must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view over the same storage with a new shape. One
// dimension may be -1 to infer its size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim for %v from %d elements", shape, len(t.data)))
		}
		out[infer] = len(t.data) / n
		n *= out[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, len(t.data)))
	}
	return &Tensor{shape: out, data: t.data}
}

// ReshapeInto is the header-reuse form of Reshape: it binds hdr as a view
// over t's storage with the new shape (one dimension may be -1 to infer)
// and returns hdr without allocating. See FromSliceInto for the ownership
// rules on hdr.
func (t *Tensor) ReshapeInto(hdr *Tensor, shape ...int) *Tensor {
	n, infer := 1, -1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in ReshapeInto")
			}
			infer = i
			continue
		}
		n *= d
	}
	hdr.shape = append(hdr.shape[:0], shape...)
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim for %v from %d elements", append([]int(nil), shape...), len(t.data)))
		}
		hdr.shape[infer] = len(t.data) / n
		n *= hdr.shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: ReshapeInto %v incompatible with %d elements", append([]int(nil), shape...), len(t.data)))
	}
	hdr.data = t.data
	return hdr
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() { t.Fill(0) }

// AddScaled computes t += alpha*u elementwise. Shapes must match.
func (t *Tensor) AddScaled(alpha float32, u *Tensor) {
	mustSameLen(t, u)
	for i, v := range u.data {
		t.data[i] += alpha * v
	}
}

// Add computes t += u elementwise.
func (t *Tensor) Add(u *Tensor) { t.AddScaled(1, u) }

// Sub computes t -= u elementwise.
func (t *Tensor) Sub(u *Tensor) { t.AddScaled(-1, u) }

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// MulElem computes t *= u elementwise.
func (t *Tensor) MulElem(u *Tensor) {
	mustSameLen(t, u)
	for i, v := range u.data {
		t.data[i] *= v
	}
}

// CopyFrom copies u's contents into t. Lengths must match.
func (t *Tensor) CopyFrom(u *Tensor) {
	mustSameLen(t, u)
	copy(t.data, u.data)
}

func mustSameLen(a, b *Tensor) {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", len(a.data), len(b.data)))
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether a and b are bitwise identical in shape and data.
func Equal(a, b *Tensor) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if math.Float32bits(a.data[i]) != math.Float32bits(b.data[i]) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(a, b *Tensor) float64 {
	mustSameLen(a, b)
	var m float64
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// ArgmaxRows treats t as a (rows, cols) matrix and returns the index of the
// maximum element in each row (ties resolve to the lowest index, making the
// result independent of any accumulation ordering).
func (t *Tensor) ArgmaxRows() []int {
	if t.Rank() != 2 {
		panic("tensor: ArgmaxRows requires rank 2")
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best := 0
		for c := 1; c < cols; c++ {
			if row[c] > row[best] {
				best = c
			}
		}
		out[r] = best
	}
	return out
}

// ArgmaxRowsInto is the allocation-free form of ArgmaxRows: it writes each
// row's argmax into dst (which must have length ≥ rows) and returns
// dst[:rows].
func (t *Tensor) ArgmaxRowsInto(dst []int) []int {
	if t.Rank() != 2 {
		panic("tensor: ArgmaxRowsInto requires rank 2")
	}
	rows, cols := t.shape[0], t.shape[1]
	if len(dst) < rows {
		panic(fmt.Sprintf("tensor: ArgmaxRowsInto dst len %d < %d rows", len(dst), rows))
	}
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best := 0
		for c := 1; c < cols; c++ {
			if row[c] > row[best] {
				best = c
			}
		}
		dst[r] = best
	}
	return dst[:rows]
}

// String renders a compact description (shape plus leading values).
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if len(t.data) > 8 {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}

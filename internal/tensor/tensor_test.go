package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("unexpected tensor geometry: len=%d rank=%d", x.Len(), x.Rank())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestScalarTensor(t *testing.T) {
	x := New()
	if x.Len() != 1 || x.Rank() != 0 {
		t.Fatalf("scalar tensor: len=%d rank=%d", x.Len(), x.Rank())
	}
	x.Set(3.5)
	if x.At() != 3.5 {
		t.Fatal("scalar set/get failed")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7, 2, 1)
	if x.At(2, 1) != 7 {
		t.Fatal("At/Set round trip failed")
	}
	if x.Data()[2*4+1] != 7 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeInference(t *testing.T) {
	x := New(4, 6)
	y := x.Reshape(2, -1)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("Reshape(2,-1) gave %v", y.Shape())
	}
	y.Set(9, 0, 0)
	if x.At(0, 0) != 9 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	New(4).Reshape(3)
}

func TestCloneIndependence(t *testing.T) {
	x := New(3)
	x.Fill(1)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{10, 20, 30}, 3)
	x.Add(y)
	if x.At(2) != 33 {
		t.Fatalf("Add: got %v", x.At(2))
	}
	x.Sub(y)
	if x.At(0) != 1 {
		t.Fatalf("Sub: got %v", x.At(0))
	}
	x.Scale(2)
	if x.At(1) != 4 {
		t.Fatalf("Scale: got %v", x.At(1))
	}
	x.MulElem(y)
	if x.At(0) != 20 {
		t.Fatalf("MulElem: got %v", x.At(0))
	}
	x.AddScaled(0.5, y)
	if x.At(0) != 25 {
		t.Fatalf("AddScaled: got %v", x.At(0))
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2.5}, 2)
	if Equal(a, b) {
		t.Fatal("Equal on different tensors")
	}
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if !Equal(a, a.Clone()) {
		t.Fatal("Equal on clone failed")
	}
	if Equal(a, New(1, 2)) {
		t.Fatal("Equal ignored shape")
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromSlice([]float32{1, 5, 2, 7, 7, 0}, 2, 3)
	got := m.ArgmaxRows()
	if got[0] != 1 {
		t.Fatalf("row 0 argmax = %d", got[0])
	}
	if got[1] != 0 { // tie resolves to the lowest index
		t.Fatalf("row 1 argmax = %d, want 0 (first of tie)", got[1])
	}
}

func TestConvGeomSizes(t *testing.T) {
	g := ConvGeom{Batch: 2, InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same-padding geometry broken: %dx%d", g.OutH(), g.OutW())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g2 := ConvGeom{Batch: 1, InC: 1, InH: 2, InW: 2, OutC: 1, KH: 5, KW: 5, Stride: 1, Pad: 0}
	if err := g2.Validate(); err == nil {
		t.Fatal("degenerate conv geometry validated")
	}
	g3 := g
	g3.Stride = 0
	if err := g3.Validate(); err == nil {
		t.Fatal("zero stride validated")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is just a reshape.
	g := ConvGeom{Batch: 1, InC: 2, InH: 3, InW: 3, OutC: 1, KH: 1, KW: 1, Stride: 1, Pad: 0}
	in := New(1, 2, 3, 3)
	for i := range in.Data() {
		in.Data()[i] = float32(i)
	}
	col := New(g.ColRows(), g.ColCols())
	Im2Col(in, g, col)
	for i, v := range col.Data() {
		if v != float32(i) {
			t.Fatalf("1x1 im2col should be identity; idx %d = %v", i, v)
		}
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 2x2 input, 2x2 kernel, no pad: single output position containing the
	// whole image, ordered (c, kh, kw).
	g := ConvGeom{Batch: 1, InC: 1, InH: 2, InW: 2, OutC: 1, KH: 2, KW: 2, Stride: 1, Pad: 0}
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	col := New(g.ColRows(), g.ColCols())
	Im2Col(in, g, col)
	want := []float32{1, 2, 3, 4}
	for i, v := range col.Data() {
		if v != want[i] {
			t.Fatalf("im2col[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	g := ConvGeom{Batch: 1, InC: 1, InH: 1, InW: 1, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	in := FromSlice([]float32{5}, 1, 1, 1, 1)
	col := New(g.ColRows(), g.ColCols())
	Im2Col(in, g, col)
	// Only the center kernel position (kh=1,kw=1) sees the pixel.
	var nonZero int
	for row := 0; row < 9; row++ {
		v := col.At(row, 0)
		if v != 0 {
			nonZero++
			if row != 4 || v != 5 {
				t.Fatalf("unexpected non-zero at row %d: %v", row, v)
			}
		}
	}
	if nonZero != 1 {
		t.Fatalf("expected exactly 1 non-zero entry, got %d", nonZero)
	}
}

func TestCol2ImInverseOfIm2ColNoOverlap(t *testing.T) {
	// Stride = kernel size means no overlapping windows, so col2im(im2col(x))
	// reproduces x exactly.
	g := ConvGeom{Batch: 2, InC: 3, InH: 4, InW: 4, OutC: 1, KH: 2, KW: 2, Stride: 2, Pad: 0}
	in := New(2, 3, 4, 4)
	for i := range in.Data() {
		in.Data()[i] = float32(i%13) - 6
	}
	col := New(g.ColRows(), g.ColCols())
	Im2Col(in, g, col)
	back := New(2, 3, 4, 4)
	Col2ImAccum(col, g, back, nil)
	if !Equal(in, back) {
		t.Fatalf("col2im(im2col) != identity for non-overlapping windows; max diff %v", MaxAbsDiff(in, back))
	}
}

func TestCol2ImOverlapCounts(t *testing.T) {
	// With a 3x3 kernel, pad 1, stride 1 on an all-ones col matrix, each
	// pixel accumulates once per kernel position that covers it.
	g := ConvGeom{Batch: 1, InC: 1, InH: 3, InW: 3, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := New(g.ColRows(), g.ColCols())
	col.Fill(1)
	out := New(1, 1, 3, 3)
	Col2ImAccum(col, g, out, nil)
	// Center pixel is covered by all 9 kernel offsets; corners by 4.
	if out.At(0, 0, 1, 1) != 9 {
		t.Fatalf("center coverage = %v, want 9", out.At(0, 0, 1, 1))
	}
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner coverage = %v, want 4", out.At(0, 0, 0, 0))
	}
}

func TestCol2ImRowOrderPermutationSameResultForExactValues(t *testing.T) {
	// With integer-valued data (exact in float32), accumulation order must
	// not change the result. This pins down that rowOrder only permutes
	// order, never drops or duplicates rows.
	g := ConvGeom{Batch: 1, InC: 2, InH: 4, InW: 4, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := New(g.ColRows(), g.ColCols())
	for i := range col.Data() {
		col.Data()[i] = float32(i % 7)
	}
	a := New(1, 2, 4, 4)
	Col2ImAccum(col, g, a, nil)
	order := make([]int, g.ColRows())
	for i := range order {
		order[i] = g.ColRows() - 1 - i
	}
	b := New(1, 2, 4, 4)
	Col2ImAccum(col, g, b, order)
	if !Equal(a, b) {
		t.Fatal("row order permutation changed exact-arithmetic result")
	}
}

func TestIm2ColProperty(t *testing.T) {
	// Property: the sum over the col matrix equals the sum over the input
	// weighted by each pixel's coverage count (here: no pad, stride=kernel,
	// so coverage is exactly 1 for covered pixels).
	f := func(seed uint8) bool {
		g := ConvGeom{Batch: 1, InC: 1, InH: 6, InW: 6, OutC: 1, KH: 2, KW: 2, Stride: 2, Pad: 0}
		in := New(1, 1, 6, 6)
		for i := range in.Data() {
			in.Data()[i] = float32((int(seed)+i*7)%11) - 5
		}
		col := New(g.ColRows(), g.ColCols())
		Im2Col(in, g, col)
		var sumIn, sumCol float64
		for _, v := range in.Data() {
			sumIn += float64(v)
		}
		for _, v := range col.Data() {
			sumCol += float64(v)
		}
		return sumIn == sumCol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

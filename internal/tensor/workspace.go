package tensor

import "fmt"

// Workspace is a per-replica activation arena: a free list of tensors keyed
// by shape, handed out by Get and reclaimed in bulk by Reset. One training
// step allocates the same set of activation/gradient shapes every batch, so
// after the first step every Get is a free-list hit and the steady-state
// step performs zero heap allocations (DESIGN.md §15).
//
// Ownership rules:
//
//   - Tensors returned by Get are valid only until the next Reset. Anything
//     that must outlive the step (weights, velocity, recorded predictions)
//     must not come from a Workspace.
//   - Contents are unspecified on reuse: callers fully overwrite what they
//     read, or explicitly Zero (the device's AllocZero does this).
//   - A Workspace is single-goroutine: it is owned by one replica's
//     training loop and is not safe for concurrent use.
type Workspace struct {
	free map[wkey][]*Tensor
	used []*Tensor
}

// wkey is a shape as a fixed-size map key. Rank ≤ 4 covers every activation
// shape in the stack (N×K matrices and N×C×H×W feature maps); higher ranks
// panic rather than silently degrade.
type wkey struct {
	rank int
	dims [4]int
}

func keyOf(shape []int) wkey {
	if len(shape) > 4 {
		panic("tensor: Workspace supports rank <= 4")
	}
	k := wkey{rank: len(shape)}
	for i, d := range shape {
		k.dims[i] = d
	}
	return k
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[wkey][]*Tensor)}
}

// Get returns a tensor of the given shape, reusing a free-listed tensor
// when one exists. Contents are unspecified on reuse; the tensor is owned
// by the caller until the next Reset.
func (w *Workspace) Get(shape ...int) *Tensor {
	k := keyOf(shape)
	if list := w.free[k]; len(list) > 0 {
		last := len(list) - 1
		t := list[last]
		list[last] = nil
		w.free[k] = list[:last]
		w.used = append(w.used, t)
		return t
	}
	t := New(shape...)
	w.used = append(w.used, t)
	return t
}

// Reset reclaims every tensor handed out since the previous Reset. Callers
// must have dropped all references first; the training loop calls this at
// each batch boundary.
func (w *Workspace) Reset() {
	for i, t := range w.used {
		k := keyOf(t.shape)
		w.free[k] = append(w.free[k], t)
		w.used[i] = nil
	}
	w.used = w.used[:0]
}

// Live returns how many tensors are currently handed out (test hook).
func (w *Workspace) Live() int { return len(w.used) }

// String describes the arena's footprint.
func (w *Workspace) String() string {
	n, el := 0, 0
	for _, list := range w.free {
		for _, t := range list {
			n++
			el += len(t.data)
		}
	}
	return fmt.Sprintf("Workspace{free: %d tensors / %d floats, live: %d}", n, el, len(w.used))
}

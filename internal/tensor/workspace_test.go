package tensor

import "testing"

func TestWorkspaceReusesByShape(t *testing.T) {
	w := NewWorkspace()
	a := w.Get(4, 8)
	b := w.Get(4, 8)
	if a == b {
		t.Fatal("two live Gets of the same shape returned the same tensor")
	}
	c := w.Get(8, 4)
	if w.Live() != 3 {
		t.Fatalf("Live = %d, want 3", w.Live())
	}
	w.Reset()
	if w.Live() != 0 {
		t.Fatalf("Live after Reset = %d, want 0", w.Live())
	}
	// Same shapes must come back from the free lists, not fresh memory.
	got := map[*Tensor]bool{w.Get(4, 8): true, w.Get(4, 8): true}
	if !got[a] || !got[b] {
		t.Fatal("Get after Reset did not reuse the freed tensors")
	}
	if w.Get(8, 4) != c {
		t.Fatal("distinct shape was not reused from its own free list")
	}
}

func TestWorkspaceShapesAreDistinct(t *testing.T) {
	w := NewWorkspace()
	a := w.Get(2, 3)
	w.Reset()
	// (3, 2) has the same element count but is a different shape key.
	b := w.Get(3, 2)
	if a == b {
		t.Fatal("workspace conflated shapes with equal element counts")
	}
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("wrong shape %v", b.Shape())
	}
}

func TestWorkspaceWarmGetAllocatesNothing(t *testing.T) {
	w := NewWorkspace()
	shapes := [][]int{{32, 10}, {32, 16, 8, 8}, {32, 3, 8, 8}, {10}}
	warm := func() {
		for _, s := range shapes {
			w.Get(s...)
		}
		w.Reset()
	}
	warm()
	if avg := testing.AllocsPerRun(10, warm); avg != 0 {
		t.Fatalf("warm Get/Reset cycle allocates %.1f times, want 0", avg)
	}
}

func TestWorkspaceRankLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank-5 Get did not panic")
		}
	}()
	NewWorkspace().Get(1, 2, 3, 4, 5)
}

func TestScratchPoolWarmCycleAllocatesNothing(t *testing.T) {
	// Warm the buckets, then a get/put cycle must not touch the heap —
	// this is why the pool is mutex-guarded stacks rather than sync.Pool,
	// whose Put boxes the slice header.
	sizes := []int{1, 100, 1 << 10, 1<<14 + 3}
	for _, n := range sizes {
		PutScratch(GetScratch(n))
	}
	avg := testing.AllocsPerRun(10, func() {
		for _, n := range sizes {
			PutScratch(GetScratch(n))
		}
	})
	if avg != 0 {
		t.Fatalf("warm scratch cycle allocates %.1f times, want 0", avg)
	}
}

// Package trace instruments how implementation noise grows during
// training. The paper observes that one-ulp accumulation differences end as
// macroscopic divergence; this package records the trajectory in between —
// the weight-space distance between two replicas after every epoch — so the
// exponential amplification regime, its onset, and the damping effect of
// design choices like batch normalization can be measured directly.
//
// This is reproduction infrastructure the paper's analysis implies but does
// not ship: a paired-replica trainer that keeps both models in lockstep on
// identical batches and differs only in the factors the chosen variant
// varies.
package trace

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Point is one epoch's divergence measurement between the paired replicas.
type Point struct {
	Epoch int
	// MaxAbsDiff is the largest absolute weight difference.
	MaxAbsDiff float64
	// L2 is the normalized weight-vector distance (paper's l2 measure).
	L2 float64
}

// Trajectory is the divergence curve of one paired run.
type Trajectory struct {
	Variant core.Variant
	Points  []Point
}

// Final returns the last measurement (zero Point if empty).
func (t *Trajectory) Final() Point {
	if len(t.Points) == 0 {
		return Point{}
	}
	return t.Points[len(t.Points)-1]
}

// AmplificationOnset returns the first epoch at which MaxAbsDiff exceeded
// threshold, or -1 if it never did. With threshold around 1e-4 this locates
// the knee where rounding noise becomes macroscopic.
func (t *Trajectory) AmplificationOnset(threshold float64) int {
	for _, p := range t.Points {
		if p.MaxAbsDiff > threshold {
			return p.Epoch
		}
	}
	return -1
}

// MonotoneAfterOnset reports whether MaxAbsDiff never falls below
// fraction*peak once the onset threshold is crossed — a loose check that
// the divergence regime is sustained growth rather than a transient.
func (t *Trajectory) MonotoneAfterOnset(threshold, fraction float64) bool {
	onset := t.AmplificationOnset(threshold)
	if onset < 0 {
		return false
	}
	peak := 0.0
	for _, p := range t.Points {
		if p.Epoch < onset {
			continue
		}
		if p.MaxAbsDiff > peak {
			peak = p.MaxAbsDiff
		}
		if p.MaxAbsDiff < fraction*peak {
			return false
		}
	}
	return true
}

// Pair trains two replicas of cfg in lockstep under the given variant
// (replica indices 0 and 1) and records their weight divergence after every
// epoch. Unlike core.RunVariant, both models see exactly interleaved
// execution, so the curve is sampled at identical optimization steps.
func Pair(cfg core.TrainConfig, v core.Variant) (*Trajectory, error) {
	if cfg.Model == nil || cfg.Dataset == nil || cfg.Epochs <= 0 || cfg.Batch <= 0 || cfg.Schedule == nil {
		return nil, fmt.Errorf("trace: incomplete TrainConfig")
	}
	type rep struct {
		net      *nn.Sequential
		dev      *device.Device
		ws       *tensor.Workspace
		loader   *data.Loader
		sgd      *opt.SGD
		shuffleS *rng.Stream
		augS     *rng.Stream
	}
	mk := func(replica int) rep {
		initS, shuffleS, augS, mode, entropy := core.SeedsFor(cfg.BaseSeed, v, replica)
		net := cfg.Model()
		net.Init(initS)
		dev := device.New(cfg.Device, mode, entropy)
		ws := net.UseWorkspace()
		dev.SetWorkspace(ws)
		return rep{
			net:      net,
			dev:      dev,
			ws:       ws,
			loader:   data.NewLoader(cfg.Dataset, cfg.Dataset.Train, cfg.Batch, cfg.Augment),
			sgd:      opt.NewSGD(cfg.Momentum, 0),
			shuffleS: shuffleS,
			augS:     augS,
		}
	}
	a, b := mk(0), mk(1)

	tr := &Trajectory{Variant: v}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.Schedule.LR(epoch)
		for _, r := range []*rep{&a, &b} {
			ep := r.loader.Epoch(r.shuffleS.SplitIndex(epoch), r.augS.SplitIndex(epoch))
			var batch data.Batch
			for ep.Next(&batch) {
				r.net.ZeroGrad()
				logits := r.net.Forward(r.dev, batch.X, true)
				_, dlogits := nn.SoftmaxCrossEntropyInPlace(r.dev, logits, batch.Labels)
				r.net.Backward(r.dev, dlogits)
				r.sgd.Step(r.net.Params(), lr)
				r.ws.Reset()
			}
		}
		wa, wb := a.net.WeightVector(), b.net.WeightVector()
		tr.Points = append(tr.Points, Point{
			Epoch:      epoch,
			MaxAbsDiff: maxAbsDiff(wa, wb),
			L2:         metrics.L2Normalized(wa, wb),
		})
	}
	return tr, nil
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

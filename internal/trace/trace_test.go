package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

func pairConfig(epochs int) core.TrainConfig {
	ds := data.CIFAR10Like(data.ScaleTest)
	return core.TrainConfig{
		Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   epochs,
		Batch:    32,
		Schedule: opt.StepDecay{Base: 0.06, Factor: 10, Every: epochs * 3 / 4},
		Momentum: 0.9,
		Augment:  data.Augment{Shift: 1, Flip: true},
		BaseSeed: 77,
	}
}

func TestControlPairNeverDiverges(t *testing.T) {
	tr, err := Pair(pairConfig(4), core.Control)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 4 {
		t.Fatalf("trajectory has %d points", len(tr.Points))
	}
	for _, p := range tr.Points {
		if p.MaxAbsDiff != 0 || p.L2 != 0 {
			t.Fatalf("CONTROL pair diverged at epoch %d: %+v", p.Epoch, p)
		}
	}
	if tr.AmplificationOnset(0) != -1 {
		t.Fatal("CONTROL pair reported an amplification onset")
	}
}

func TestImplPairStartsAtRoundingScale(t *testing.T) {
	// After one epoch under IMPL noise the divergence must exist but still
	// be at rounding scale — the amplification has not happened yet.
	tr, err := Pair(pairConfig(1), core.Impl)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Final()
	if p.MaxAbsDiff == 0 {
		t.Fatal("IMPL pair identical after an epoch; entropy not flowing")
	}
	if p.MaxAbsDiff > 1e-3 {
		t.Fatalf("epoch-0 divergence %v too large for rounding noise", p.MaxAbsDiff)
	}
}

func TestImplPairAmplifies(t *testing.T) {
	// The paper's mechanism end to end: rounding-scale noise grows by
	// orders of magnitude over training.
	tr, err := Pair(pairConfig(30), core.Impl)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.Points[0].MaxAbsDiff
	final := tr.Final().MaxAbsDiff
	if final < 1e-3 {
		t.Fatalf("divergence did not amplify: first %v, final %v", first, final)
	}
	if final < 100*first {
		t.Fatalf("expected orders-of-magnitude growth: first %v, final %v", first, final)
	}
	onset := tr.AmplificationOnset(1e-4)
	if onset <= 0 {
		t.Fatalf("onset epoch %d; expected amplification after a delay", onset)
	}
}

func TestAlgoPairDivergesImmediately(t *testing.T) {
	// Different inits: the pair starts far apart, no amplification delay.
	tr, err := Pair(pairConfig(2), core.Algo)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Points[0].L2 < 0.1 {
		t.Fatalf("ALGO pair too close after first epoch: L2 %v", tr.Points[0].L2)
	}
}

func TestPairValidatesConfig(t *testing.T) {
	bad := pairConfig(4)
	bad.Model = nil
	if _, err := Pair(bad, core.Impl); err == nil {
		t.Fatal("nil model accepted")
	}
	bad2 := pairConfig(0)
	if _, err := Pair(bad2, core.Impl); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestTrajectoryHelpers(t *testing.T) {
	tr := &Trajectory{Points: []Point{
		{Epoch: 0, MaxAbsDiff: 1e-7},
		{Epoch: 1, MaxAbsDiff: 1e-5},
		{Epoch: 2, MaxAbsDiff: 1e-2},
		{Epoch: 3, MaxAbsDiff: 5e-2},
	}}
	if got := tr.AmplificationOnset(1e-4); got != 2 {
		t.Fatalf("onset = %d, want 2", got)
	}
	if !tr.MonotoneAfterOnset(1e-4, 0.01) {
		t.Fatal("sustained growth not detected")
	}
	empty := &Trajectory{}
	if empty.Final() != (Point{}) {
		t.Fatal("empty Final not zero")
	}
	if empty.MonotoneAfterOnset(1e-4, 0.5) {
		t.Fatal("empty trajectory claims monotone growth")
	}
}

package repro

import (
	"context"
	"testing"

	"repro/internal/data"
)

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) != 15 {
		t.Fatalf("Experiments() lists %d artifacts, want 15 (4 tables + 11 figures)", len(ids))
	}
	metas := ExperimentList()
	if len(metas) != len(ids) {
		t.Fatalf("ExperimentList() lists %d artifacts, want %d", len(metas), len(ids))
	}
	for i, m := range metas {
		if m.ID != ids[i] || m.Title == "" {
			t.Fatalf("metadata %d = %+v, want id %q with a title", i, m, ids[i])
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	cfg := Config{Scale: data.ScaleTest, Replicas: 2, Seed: 1}
	res, err := RunExperiment(context.Background(), "table4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "table4" || len(res.Tables) != 1 || len(res.Tables[0].Rows) == 0 {
		t.Fatalf("table4 facade result: %+v", res)
	}
	if res.Config.Scale != "test" || res.Config.Replicas != 2 || res.Config.Seed != 1 {
		t.Fatalf("config echo: %+v", res.Config)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment(context.Background(), "nope", QuickConfig()); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestQuickConfigDefaults(t *testing.T) {
	cfg := QuickConfig()
	if cfg.Scale != data.ScaleQuick {
		t.Fatalf("QuickConfig scale %v", cfg.Scale)
	}
}

func TestGridFacade(t *testing.T) {
	if len(Devices()) != 7 {
		t.Fatalf("Devices() lists %d entries", len(Devices()))
	}
	if len(Workloads()) != 6 {
		t.Fatalf("Workloads() lists %d recipes", len(Workloads()))
	}
	// Compilation errors surface without training anything.
	if _, err := RunGrid(context.Background(), GridSpec{
		Tasks: []string{"nope"}, Devices: []string{"V100"},
	}, QuickConfig()); err == nil {
		t.Fatal("unknown task accepted")
	}
}

package repro

import (
	"testing"

	"repro/internal/data"
)

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) != 15 {
		t.Fatalf("Experiments() lists %d artifacts, want 15 (4 tables + 11 figures)", len(ids))
	}
}

func TestRunExperimentFacade(t *testing.T) {
	cfg := Config{Scale: data.ScaleTest, Replicas: 2, Seed: 1}
	tables, err := RunExperiment("table4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("table4 facade result: %+v", tables)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", QuickConfig()); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestQuickConfigDefaults(t *testing.T) {
	cfg := QuickConfig()
	if cfg.Scale != data.ScaleQuick {
		t.Fatalf("QuickConfig scale %v", cfg.Scale)
	}
}
